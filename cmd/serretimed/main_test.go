package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"serretime"
)

// buildDaemon compiles the serretimed binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "serretimed")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// lockedBuffer collects child output concurrently with test assertions.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// daemon is one serretimed child process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
	out  *lockedBuffer
}

// startDaemon boots the binary on a kernel-chosen port and waits for its
// "listening on" line.
func startDaemon(t *testing.T, bin, dataDir string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dataDir}, extra...)
	cmd := exec.Command(bin, args...)
	buf := &lockedBuffer{}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})

	addr := make(chan string, 1)
	go func() {
		defer io.Copy(buf, stdout) // keep draining after the address line
		rd := make([]byte, 4096)
		var acc []byte
		for {
			n, err := stdout.Read(rd)
			acc = append(acc, rd[:n]...)
			buf.Write(rd[:n])
			if i := bytes.Index(acc, []byte("listening on ")); i >= 0 {
				if j := bytes.IndexByte(acc[i:], '\n'); j >= 0 {
					addr <- strings.TrimSpace(string(acc[i+len("listening on ") : i+j]))
					return
				}
			}
			if err != nil {
				addr <- ""
				return
			}
		}
	}()
	select {
	case a := <-addr:
		if a == "" {
			t.Fatalf("daemon died before listening:\n%s", buf.String())
		}
		return &daemon{cmd: cmd, base: "http://" + a, out: buf}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never announced its address:\n%s", buf.String())
		return nil
	}
}

// kill SIGKILLs the daemon — no drain, no WAL close: the crash under test.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = d.cmd.Wait()
}

type submitReply struct {
	ID          string `json:"id"`
	Status      string `json:"status"`
	Disposition string `json:"disposition"`
}

func submit(t *testing.T, base string, body []byte) submitReply {
	t.Helper()
	resp, err := http.Post(base+"/v1/retime?frames=2&words=1", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d: %.300s", resp.StatusCode, data)
	}
	var r submitReply
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("submit reply: %v: %.300s", err, data)
	}
	return r
}

func waitDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var v struct {
			Status, Error string
		}
		_ = json.Unmarshal(data, &v)
		switch v.Status {
		case "done":
			return
		case "failed":
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
}

func fetchResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d: %.300s", resp.StatusCode, data)
	}
	return data
}

func tableIBench(t *testing.T, name string, scale int) []byte {
	t.Helper()
	d, err := serretime.NewTableIDesign(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestKillRecover is the end-to-end crash contract: solve a job, SIGKILL
// the daemon (no drain, no close), restart it on the same data
// directory, and demand the resubmission answers "cached" with the
// byte-identical result. A second job killed mid-lifecycle must be
// re-solved by the reborn daemon under the same job ID.
func TestKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	bench := tableIBench(t, "b14_1_opt", 100)

	// Life 1: solve, confirm, crash.
	d1 := startDaemon(t, bin, dataDir)
	r1 := submit(t, d1.base, bench)
	if r1.Disposition != "accepted" {
		t.Fatalf("first submit: %+v", r1)
	}
	waitDone(t, d1.base, r1.ID)
	want := fetchResult(t, d1.base, r1.ID)

	// Second job: journaled as submitted, then the process dies. With
	// -fsync always the submitted record is durable before the HTTP
	// reply, so the reborn daemon must know about it.
	bench2 := tableIBench(t, "s13207", 100)
	r2 := submit(t, d1.base, bench2)
	d1.kill(t)

	// Life 2: same directory. The finished job must be a cache hit with
	// identical bytes; the interrupted one must re-solve under its ID.
	d2 := startDaemon(t, bin, dataDir)
	rr := submit(t, d2.base, bench)
	if rr.Disposition != "cached" {
		t.Fatalf("post-crash resubmit: disposition %q, want cached\nlogs:\n%s", rr.Disposition, d2.out.String())
	}
	if rr.ID != r1.ID {
		t.Fatalf("post-crash job ID changed: %s vs %s", rr.ID, r1.ID)
	}
	got := fetchResult(t, d2.base, rr.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered result differs from pre-crash result")
	}

	waitDone(t, d2.base, r2.ID)
	if res := fetchResult(t, d2.base, r2.ID); len(res) == 0 {
		t.Fatal("re-solved job served an empty result")
	}

	// The health endpoint reports the recovery.
	resp, err := http.Get(d2.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hdata, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var h struct {
		StoreMode         string `json:"store_mode"`
		RecoveredFinished int    `json:"recovered_finished"`
		RecoveredRequeued int    `json:"recovered_requeued"`
	}
	if err := json.Unmarshal(hdata, &h); err != nil {
		t.Fatalf("healthz: %v: %.300s", err, hdata)
	}
	// The second job raced the SIGKILL: depending on timing it was
	// recovered finished or requeued — either way both jobs survived.
	if h.StoreMode != "disk" || h.RecoveredFinished+h.RecoveredRequeued != 2 || h.RecoveredFinished < 1 {
		t.Fatalf("healthz after recovery: %+v\nlogs:\n%s", h, d2.out.String())
	}
	d2.kill(t)

	// Life 3: everything — including the job life 2 re-solved — is now a
	// cache hit.
	d3 := startDaemon(t, bin, dataDir)
	if rr := submit(t, d3.base, bench2); rr.Disposition != "cached" {
		t.Fatalf("third-life resubmit of re-solved job: %q, want cached\nlogs:\n%s", rr.Disposition, d3.out.String())
	}
	fmt.Println("kill-recover: cache survived two crashes")
}

// TestMemoryOnlyModeUnchanged pins the default: no -data-dir, no store,
// /healthz reports memory mode.
func TestMemoryOnlyModeUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	bin := buildDaemon(t)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()
	rd := make([]byte, 4096)
	var acc []byte
	for !bytes.Contains(acc, []byte("\n")) {
		n, err := stdout.Read(rd)
		acc = append(acc, rd[:n]...)
		if err != nil {
			t.Fatalf("daemon died: %s", acc)
		}
	}
	addr := strings.TrimSpace(strings.TrimPrefix(strings.SplitN(string(acc), "\n", 2)[0], "serretimed: listening on "))
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(data), `"store_mode": "memory"`) {
		t.Fatalf("healthz: %.300s", data)
	}
}

// submitRaw posts a netlist with an arbitrary query string and returns
// the raw status code and body — for exercising rejection paths the
// submit helper treats as fatal.
func submitRaw(t *testing.T, base, query string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/retime?"+query, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// TestAccuracyQueryEndToEnd drives the accuracy tier through the real
// daemon: a misspelled parameter must 400 (never silently run the
// expensive exact path), a bad value must 400, and a fast-tier job must
// solve end to end without coalescing onto the exact-tier cache entry.
func TestAccuracyQueryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin, t.TempDir())
	bench := tableIBench(t, "s35932", 1500)

	if code, data := submitRaw(t, d.base, "acuracy=fast&frames=2&words=1", bench); code != http.StatusBadRequest {
		t.Fatalf("misspelled acuracy=: HTTP %d, want 400: %.300s", code, data)
	} else if !bytes.Contains(data, []byte("acuracy")) {
		t.Fatalf("400 body does not name the bad parameter: %.300s", data)
	}
	if code, data := submitRaw(t, d.base, "accuracy=banana&frames=2&words=1", bench); code != http.StatusBadRequest {
		t.Fatalf("accuracy=banana: HTTP %d, want 400: %.300s", code, data)
	}

	code, data := submitRaw(t, d.base, "accuracy=fast&frames=2&words=1", bench)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("accuracy=fast submit: HTTP %d: %.300s", code, data)
	}
	var fast submitReply
	if err := json.Unmarshal(data, &fast); err != nil {
		t.Fatalf("fast reply: %v: %.300s", err, data)
	}
	waitDone(t, d.base, fast.ID)
	if out := fetchResult(t, d.base, fast.ID); len(out) == 0 {
		t.Fatal("fast job returned an empty netlist")
	}

	// The exact-tier submission of the same netlist+options must be a
	// fresh job, not a cache hit on the fast one.
	exact := submit(t, d.base, bench)
	if exact.Disposition == "cached" {
		t.Fatalf("exact submission coalesced onto the fast cache entry: %+v", exact)
	}
	if exact.ID == fast.ID {
		t.Fatalf("fast and exact submissions share job ID %s", exact.ID)
	}
}
