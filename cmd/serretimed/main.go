// Command serretimed is the batch-retiming daemon: an HTTP service that
// accepts netlists (.bench/.blif/.v), solves them through the
// RetimeRobust degradation chain on a bounded worker pool, and serves
// results from a content-addressed cache — identical (netlist, options)
// submissions are answered without re-solving.
//
// Endpoints:
//
//	POST /v1/retime           submit a netlist (raw body + ?name=, or
//	                          multipart field "netlist"); options via
//	                          query parameters (algorithm, accuracy,
//	                          epsilon, frames, words, seed, timeout,
//	                          ...); unknown parameter names are
//	                          rejected with 400
//	GET  /v1/jobs/{id}        job status (tier, ΔSER, error class)
//	GET  /v1/jobs/{id}/result retimed netlist download (.bench)
//	GET  /v1/jobs/{id}/trace  the job's span tree (queue wait, tiers,
//	                          pipeline phases, parallel shards) as JSON
//	POST /v1/sessions         open a warm ECO session: same body and
//	                          options as /v1/retime, solved synchronously;
//	                          the parsed circuit and committed solver
//	                          state stay resident for incremental re-solves
//	POST /v1/sessions/{id}/delta
//	                          apply netlist delta ops (rewire, add_gate,
//	                          rm_node, mark_po, unmark_po) and re-solve —
//	                          warm when the change is small, full solve
//	                          otherwise; the result is bit-identical to a
//	                          from-scratch solve either way
//	GET  /v1/sessions/{id}        session status (deltas, warm/fallback)
//	GET  /v1/sessions/{id}/result current retimed netlist (.bench)
//	DELETE /v1/sessions/{id}      close the session
//
// Sessions are ephemeral: they live in memory only, are LRU-evicted
// beyond -max-sessions, expire after -session-ttl idle, and answer 410
// after a daemon restart (the ID carries a per-boot nonce).
//	GET  /debug/jobs          live in-flight jobs: age, current phase,
//	                          queue wait, worker utilization
//	GET  /healthz             liveness, queue depth, build identity
//	GET  /metrics             Prometheus-style metrics with exemplar
//	                          trace IDs on the latency histograms
//
// Every accepted job is traced end to end: a trace ID is minted at
// ingress (or adopted from the client's Traceparent header) and its
// span tree is persisted next to the result under -data-dir, so traces
// survive restarts and `seranalyze -tracedir DIR/traces` can aggregate
// them into a fleet report. The -slowjob watchdog logs the open-span
// stack of any job running past the deadline.
//
// A full queue answers 429 with Retry-After; SIGTERM/SIGINT drains
// gracefully: the listener stops accepting, in-flight solves are
// cancelled through their context, queued jobs are failed, and the JSONL
// trace (when -trace is set) is flushed before exit.
//
// With -data-dir the cache survives restarts — crash included: every job
// transition is journaled to a write-ahead log and every payload written
// atomically with a checksum (internal/store). On boot the daemon
// replays the WAL: finished jobs are re-offered as cache hits (corrupt
// payloads are quarantined, never served), jobs that were queued or
// running when the process died are re-enqueued and solved again. The
// -fsync policy bounds how much journaled state a power cut can lose. A
// store write failure never fails a solve: the daemon logs once, flips
// /healthz store_mode to "memory-degraded", and keeps serving from
// memory.
//
// Usage:
//
//	serretimed [-addr :8080] [-queue 64] [-jobs N] [-solve-workers N]
//	           [-timeout 5m] [-retries N] [-cache N] [-trace out.jsonl]
//	           [-data-dir DIR] [-fsync always|interval|never]
//	           [-fsync-interval 100ms] [-slowjob 2m]
//	           [-max-sessions 32] [-session-ttl 15m]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"serretime/internal/service"
	"serretime/internal/store"
	"serretime/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("serretimed", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	queue := fs.Int("queue", 64, "job queue bound (submissions beyond it get 429)")
	workers := fs.Int("jobs", 0, "concurrent solves (0 = one per CPU)")
	solveWorkers := fs.Int("solve-workers", 1, "per-solve analysis workers (internal/par budget)")
	timeout := fs.Duration("timeout", 5*time.Minute, "default per-attempt solve budget")
	retries := fs.Int("retries", 0, "default per-tier retry count")
	cacheSize := fs.Int("cache", 4096, "retained finished jobs (content-addressed cache entries)")
	tracePath := fs.String("trace", "", "stream a JSONL telemetry trace of every solve")
	drainWait := fs.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM")
	dataDir := fs.String("data-dir", "", "persist jobs and results here; replayed on boot (empty = memory-only)")
	fsyncPolicy := fs.String("fsync", "always", "WAL durability: always, interval or never")
	fsyncEvery := fs.Duration("fsync-interval", 100*time.Millisecond, "max un-synced window under -fsync interval")
	slowJob := fs.Duration("slowjob", 2*time.Minute, "log a stack-of-spans snapshot for jobs running longer than this (0 = off)")
	maxSessions := fs.Int("max-sessions", 32, "resident warm ECO sessions (LRU-evicted beyond this)")
	sessionTTL := fs.Duration("session-ttl", 15*time.Minute, "evict sessions idle longer than this (<0 = never)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var rec telemetry.Recorder
	var trace *telemetry.JSONLWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serretimed: %v\n", err)
			return 1
		}
		defer f.Close()
		trace = telemetry.NewJSONLWriter(f)
		rec = trace
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	cfg := service.Config{
		QueueDepth:   *queue,
		Workers:      *workers,
		SolveWorkers: *solveWorkers,
		Timeout:      *timeout,
		Retries:      *retries,
		MaxJobs:      *cacheSize,
		SlowJob:      *slowJob,
		MaxSessions:  *maxSessions,
		SessionTTL:   *sessionTTL,
		Recorder:     rec,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}

	// Open the persistent store (when configured) and replay its WAL
	// before the listener comes up, so the first request already sees
	// the restored cache.
	var recovered []store.RecoveredJob
	var recStats store.Stats
	if *dataDir != "" {
		policy, err := store.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serretimed: %v\n", err)
			return 2
		}
		disk, err := store.Open(store.Options{Dir: *dataDir, Sync: policy, SyncEvery: *fsyncEvery})
		if err != nil {
			fmt.Fprintf(os.Stderr, "serretimed: %v\n", err)
			return 1
		}
		recovered, recStats, err = disk.Recover()
		if err != nil {
			fmt.Fprintf(os.Stderr, "serretimed: recovery: %v\n", err)
			return 1
		}
		cfg.Store = disk
		fmt.Printf("serretimed: store: %s (fsync=%s)\n", disk.Dir(), policy)
	}

	svc := service.New(context.Background(), cfg)
	if cfg.Store != nil {
		sum := svc.Restore(recovered, recStats)
		fmt.Printf("serretimed: recovery: %d finished jobs restored, %d requeued, %d dropped, %d quarantined\n",
			sum.Finished, sum.Requeued, sum.Dropped, sum.Quarantined)
		if recStats.CorruptRecords > 0 || recStats.TruncatedTail {
			fmt.Printf("serretimed: recovery: WAL damage absorbed: %d corrupt records, truncated tail=%v\n",
				recStats.CorruptRecords, recStats.TruncatedTail)
		}
	}
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serretimed: %v\n", err)
		return 1
	}
	fmt.Printf("serretimed: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "serretimed: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: stop accepting, cancel in-flight solves, flush the trace.
	fmt.Println("serretimed: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	code := 0
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "serretimed: shutdown: %v\n", err)
		code = 1
	}
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "serretimed: drain: %v\n", err)
		code = 1
	}
	if trace != nil {
		if err := trace.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "serretimed: trace: %v\n", err)
			code = 1
		}
	}
	fmt.Println("serretimed: stopped")
	return code
}
