// Command sergen synthesizes a sequential benchmark circuit with
// prescribed statistics and writes it in ISCAS89 .bench format. It either
// takes explicit statistics or the name of one of the paper's Table I
// circuits (whose published |V|, |E|, #FF and clock-period regime it
// reproduces — see DESIGN.md §4 for the substitution rationale).
//
// Usage:
//
//	sergen -table s13207 [-scale 1] -out s13207.bench
//	sergen -preset par100k -out par100k.bench
//	sergen -gates 5000 -conns 11000 -ffs 1200 [-depth 40] -out custom.bench
package main

import (
	"flag"
	"fmt"
	"os"

	"serretime"
	"serretime/internal/gen"
)

func main() {
	var (
		table  = flag.String("table", "", "Table I circuit name (overrides explicit statistics)")
		preset = flag.String("preset", "", "named benchmark preset (par50k, par100k): the circuits the repo's benchmarks generate on demand")
		scale  = flag.Int("scale", 1, "shrink factor for -table")
		gates  = flag.Int("gates", 0, "gate count")
		conns  = flag.Int("conns", 0, "connection count")
		ffs    = flag.Int("ffs", 0, "flip-flop count")
		depth  = flag.Int("depth", 0, "target logic depth (0 = derived)")
		seed   = flag.Int64("seed", 0, "generator seed (0 = derive from name)")
		name   = flag.String("name", "synth", "design name for explicit statistics")
		out    = flag.String("out", "", "output .bench path (default: stdout)")
		list   = flag.Bool("list", false, "list the Table I circuit names and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range serretime.TableICircuits() {
			fmt.Println(n)
		}
		return
	}
	var d *serretime.Design
	var err error
	if *table != "" {
		d, err = serretime.NewTableIDesign(*table, *scale)
	} else if *preset != "" {
		var spec gen.Spec
		if spec, err = gen.Preset(*preset); err == nil {
			d, err = serretime.Synthesize(serretime.CircuitSpec{
				Name: spec.Name, Gates: spec.Gates, Conns: spec.Conns,
				FFs: spec.FFs, Depth: spec.Depth,
			})
		}
	} else {
		d, err = serretime.Synthesize(serretime.CircuitSpec{
			Name: *name, Gates: *gates, Conns: *conns, FFs: *ffs,
			Depth: *depth, Seed: *seed,
		})
	}
	if err != nil {
		fatal(err)
	}
	st, err := d.Stats()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sergen: %s: |V|=%d |E|=%d #FF=%d PIs=%d POs=%d depth=%d\n",
		d.Name(), st.Vertices, st.Edges, st.FFs, st.PIs, st.POs, st.Depth)
	if *out == "" {
		fmt.Print(d.String())
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := d.WriteBench(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sergen:", err)
	os.Exit(1)
}
