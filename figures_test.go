package serretime

// Executable reproductions of the paper's figures (DESIGN.md §3):
// Figure 1 (the observability/ELW trade-off), Figure 2 (the three active
// constraint types — asserted through the optimizer's violation counters),
// and Figure 3 (positive-positive tree linking, covered in
// internal/forest's TestFigure3; here the weight-update path is exercised
// through the public pipeline).

import (
	"math"
	"testing"

	"serretime/internal/core"
	"serretime/internal/elw"
	"serretime/internal/graph"
	"serretime/internal/ser"
)

// TestFigure1 asserts the exact scenario of the paper's Figure 1: moving
// the register forward reduces register observability (0.6 -> 0.4) but
// grows |ELW(A)| and |ELW(B)| by 1 each, and the total SER gets worse.
func TestFigure1(t *testing.T) {
	gr, g, in := figure1Graph()
	r0 := graph.NewRetiming(gr)
	r1 := graph.NewRetiming(gr)
	r1[g] = -1
	if err := gr.CheckLegal(r1); err != nil {
		t.Fatal(err)
	}

	elws0, err := elw.Exact(gr, r0, in.Params, 0)
	if err != nil {
		t.Fatal(err)
	}
	elws1, err := elw.Exact(gr, r1, in.Params, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A and B are vertices 1 and 2.
	for _, v := range []graph.VertexID{1, 2} {
		grow := elws1[v].Measure() - elws0[v].Measure()
		if math.Abs(grow-1) > 1e-9 {
			t.Fatalf("|ELW(%s)| grew by %g, want 1", gr.Name(v), grow)
		}
	}
	an0, err := ser.Compute(gr, r0, in)
	if err != nil {
		t.Fatal(err)
	}
	an1, err := ser.Compute(gr, r1, in)
	if err != nil {
		t.Fatal(err)
	}
	if an1.RegisterObs >= an0.RegisterObs {
		t.Fatalf("register obs did not fall: %g -> %g", an0.RegisterObs, an1.RegisterObs)
	}
	if an1.Total <= an0.Total {
		t.Fatalf("SER did not worsen: %g -> %g", an0.Total, an1.Total)
	}
}

// TestFigure2ActiveConstraints drives the optimizer into each of the three
// violation kinds of Figure 2 and checks they are detected and repaired.
func TestFigure2ActiveConstraints(t *testing.T) {
	// (a) P0: chain with a positive-gain sink whose move drains an empty
	// edge, dragging its predecessor.
	b := graph.NewBuilder()
	u := b.AddVertex("u", 1)
	v := b.AddVertex("v", 1)
	b.AddEdge(graph.Host, u, 1)
	b.AddEdge(u, v, 0)
	b.AddEdge(v, graph.Host, 1)
	g := b.Build()
	gains := []int64{0, -1, 10}
	obsI := []int64{1, 1, 1}
	res, err := core.Minimize(g, gains, obsI, core.Options{Phi: 100, Th: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations[core.KindP0] == 0 {
		t.Fatalf("no P0 repair recorded: %v", res.Violations)
	}
	if res.R[v] == 0 || res.R[u] == 0 {
		t.Fatalf("P0 constraint should have moved both u and v: %v", res.R)
	}

	// (b) P1': a move that would merge a critical path must be repaired
	// (tested against the tight-period graph of the core tests).
	b2 := graph.NewBuilder()
	a2 := b2.AddVertex("a", 5)
	v2 := b2.AddVertex("b", 5)
	b2.AddEdge(graph.Host, a2, 0)
	b2.AddEdge(a2, v2, 1)
	b2.AddEdge(v2, graph.Host, 0)
	g2 := b2.Build()
	res2, err := core.Minimize(g2, []int64{0, -100, 800}, []int64{500, 900, 100},
		core.Options{Phi: 6, Th: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Violations[core.KindP1] == 0 && res2.Violations[core.KindP0] == 0 {
		t.Fatalf("no P1'/P0 repair recorded: %v", res2.Violations)
	}
	if res2.Objective != res2.Initial {
		t.Fatalf("tight period must block the move (obj %d -> %d)", res2.Initial, res2.Objective)
	}

	// (c) P2': the shortened register-launched path must be repaired (the
	// p2Graph of the core tests, via the public pipeline semantics).
	b3 := graph.NewBuilder()
	a3 := b3.AddVertex("A", 5)
	v3 := b3.AddVertex("B", 1)
	c3 := b3.AddVertex("C", 5)
	b3.AddEdge(graph.Host, a3, 0)
	b3.AddEdge(a3, v3, 1)
	b3.AddEdge(v3, c3, 0)
	b3.AddEdge(c3, graph.Host, 0)
	g3 := b3.Build()
	res3, err := core.Minimize(g3, []int64{0, -900, 800, -100}, []int64{500, 900, 100, 500},
		core.Options{Phi: 100, Th: 2, Rmin: 6, ELWConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Violations[core.KindP2] == 0 {
		t.Fatalf("no P2' repair recorded: %v", res3.Violations)
	}
	if res3.R[v3] != 0 {
		t.Fatalf("P2' should have blocked the move: r = %v", res3.R)
	}
}
