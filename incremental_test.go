package serretime

import (
	"testing"

	"serretime/internal/telemetry"
)

// incrementalTestDesigns is the circuit set of the incremental-state
// property tests: both checked-in netlists plus synthetic circuits large
// enough that the solver loop takes many label updates.
func incrementalTestDesigns(t *testing.T) []*Design {
	t.Helper()
	var designs []*Design
	for _, p := range []string{"testdata/s27.bench", "testdata/pipeline4.bench"} {
		d, err := Load(p)
		if err != nil {
			t.Fatal(err)
		}
		designs = append(designs, d)
	}
	for _, spec := range []CircuitSpec{
		{Name: "inc-a", Gates: 200, Conns: 450, FFs: 60},
		{Name: "inc-b", Gates: 500, Conns: 1100, FFs: 150, Depth: 14},
	} {
		d, err := Synthesize(spec)
		if err != nil {
			t.Fatal(err)
		}
		designs = append(designs, d)
	}
	return designs
}

// TestRetimeIncrementalMatchesFullRecompute is the end-to-end
// behavior-preservation property: on every test circuit, the full pipeline
// run with dirty-region label patching plus the shadow oracle
// (CheckLabels) must produce exactly the result of the pre-refactor
// recompute-per-move mode (FullLabelRecompute), down to the per-vertex
// retiming of the materialized circuit.
func TestRetimeIncrementalMatchesFullRecompute(t *testing.T) {
	for _, d := range incrementalTestDesigns(t) {
		for _, algo := range []Algorithm{MinObs, MinObsWin} {
			want, err := d.Retime(RetimeOptions{Algorithm: algo, FullLabelRecompute: true})
			if err != nil {
				t.Fatalf("%s/%v full: %v", d.Name(), algo, err)
			}
			col := telemetry.NewCollector()
			got, err := d.Retime(RetimeOptions{Algorithm: algo, CheckLabels: true, Recorder: col})
			if err != nil {
				t.Fatalf("%s/%v checked: %v", d.Name(), algo, err)
			}
			if got.Rounds != want.Rounds || got.Steps != want.Steps ||
				got.Phi != want.Phi || got.Rmin != want.Rmin ||
				got.After != want.After || got.Before != want.Before {
				t.Fatalf("%s/%v: checked run diverged: rounds %d/%d steps %d/%d after %+v / %+v",
					d.Name(), algo, got.Rounds, want.Rounds, got.Steps, want.Steps, got.After, want.After)
			}
			gs, err := got.Retimed.Stats()
			if err != nil {
				t.Fatal(err)
			}
			ws, err := want.Retimed.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if gs != ws {
				t.Fatalf("%s/%v: retimed circuits differ: %+v vs %+v", d.Name(), algo, gs, ws)
			}
			// The acceptance bar: on the checked-in testdata circuits the
			// incremental path must actually be exercised (hit ratio > 0),
			// with full recomputes only on the counted fallback path. The
			// synthetic circuits are allowed all-fallback runs — their
			// first moves can dirty most of the circuit, where falling
			// back is the intended behavior.
			s := col.Stats()
			testdata := d.Name() == "s27" || d.Name() == "pipeline4"
			if algo == MinObsWin && testdata && s.Counter(telemetry.CounterLabelPatches) == 0 {
				t.Errorf("%s/%v: incremental-hit ratio is zero (fulls=%d fallbacks=%d)",
					d.Name(), algo, s.Counter(telemetry.CounterLabelFulls),
					s.Counter(telemetry.CounterLabelFallbacks))
			}
			if f, fb := s.Counter(telemetry.CounterLabelFulls), s.Counter(telemetry.CounterLabelFallbacks); f > fb {
				// Non-fallback fulls are only the bootstrap when no seed
				// labels exist; the initialization always provides them.
				t.Errorf("%s/%v: %d full recomputes beyond the %d fallbacks",
					d.Name(), algo, f, fb)
			}
		}
	}
}
