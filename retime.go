package serretime

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strconv"
	"time"

	"serretime/internal/benchfmt"
	"serretime/internal/core"
	"serretime/internal/elw"
	"serretime/internal/graph"
	"serretime/internal/guard"
	"serretime/internal/retime"
	"serretime/internal/telemetry"
	"serretime/internal/verify"
)

// Default setup and hold times, following [23] as the paper does.
const (
	DefaultTs = 0.0
	DefaultTh = 2.0
)

func elwParams(phi float64) elw.Params {
	return elw.Params{Phi: phi, Ts: DefaultTs, Th: DefaultTh}
}

// Algorithm selects the retiming objective.
type Algorithm uint8

const (
	// MinObsWin is the paper's contribution: register observability
	// minimization under error-latching window constraints (Algorithm 1).
	MinObsWin Algorithm = iota
	// MinObs is the Efficient MinObs baseline ([17] re-solved with the
	// incremental machinery, no ELW constraints).
	MinObs
	// MinArea minimizes the register count instead of observability
	// (classic min-area retiming under the period constraint).
	MinArea
)

func (a Algorithm) String() string {
	switch a {
	case MinObsWin:
		return "MinObsWin"
	case MinObs:
		return "MinObs"
	case MinArea:
		return "MinArea"
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// EngineKind selects the closed-set machinery of the optimizer.
type EngineKind uint8

const (
	// EngineClosure is the exact max-gain-closure engine (default).
	EngineClosure EngineKind = iota
	// EngineForest is the paper's weighted regular forest.
	EngineForest
)

func (e EngineKind) String() string {
	switch e {
	case EngineClosure:
		return "closure"
	case EngineForest:
		return "forest"
	}
	return fmt.Sprintf("EngineKind(%d)", uint8(e))
}

// RetimeOptions configures Design.Retime.
type RetimeOptions struct {
	// Algorithm picks the objective (default MinObsWin).
	Algorithm Algorithm
	// Epsilon relaxes the minimal clock period (default 0.10, Section V).
	Epsilon float64
	// Ts and Th are setup/hold times (defaults 0 and 2).
	Ts, Th float64
	// Analysis tunes the observability/SER evaluation.
	Analysis AnalysisOptions
	// Engine selects the optimizer machinery.
	Engine EngineKind
	// SingleViolation repairs one violation per iteration (verbatim
	// Algorithm 1; slower, same fixpoint).
	SingleViolation bool
	// LiteralGains uses the paper's literal b(v) formula instead of the
	// eq.(5)-consistent one (ablation; see DESIGN.md).
	LiteralGains bool
	// AreaWeight λ adds λ·(register-count gain) to the objective — the
	// area/power-weighted extension of the paper's Section VII.
	AreaWeight float64
	// Verify co-simulates the optimizer's move against the initialized
	// circuit and fails on any output divergence.
	Verify bool
	// KUnits is the integer scaling of observabilities (default: the
	// number of simulated vectors K, as in the paper).
	KUnits int
	// StallSteps arms the optimizer watchdog: the run aborts with an
	// error unwrapping to guard.ErrStalled when the objective has not
	// improved for this many consecutive steps. 0 disables the watchdog.
	StallSteps int
	// RminOverride replaces the Section V shortest-path bound Rmin of the
	// P2' constraints when nonzero. RetimeRobust uses it to relax the ELW
	// budget between degradation tiers; tests use it to wedge the budget
	// (an absurdly large bound makes every P2' constraint infeasible).
	RminOverride float64
	// CheckLabels cross-checks every incremental L/R label patch of the
	// optimizer against the full elw.ComputeLabels oracle and fails with
	// an error unwrapping to solverstate.ErrLabelMismatch on divergence
	// (serbench -checklabels). Debug mode: restores recompute-per-move
	// cost.
	CheckLabels bool
	// FullLabelRecompute disables the optimizer's dirty-region label
	// patching, recomputing labels from scratch on every tentative move —
	// the pre-incremental behavior, kept for before/after benchmarks.
	FullLabelRecompute bool
	// initMemo, when set by RetimeRobust, caches the Section V
	// initialization and the rebased graph across degradation tiers that
	// share (Ts, Th, Epsilon), so stepping down a tier does not repeat
	// the min-period searches and the tiers seed their solver state from
	// one set of labels.
	initMemo *initCache
	// Recorder receives the run's telemetry: phase spans (obs-analysis,
	// init, gains, minimize, verify, rebuild, analysis and the optimizer's
	// inner phases), counters, gauges, and the worker-pool utilization
	// counters of the sharded analyses. nil records nothing; the no-op
	// recorder costs nothing on the hot path. Use a telemetry.Collector for
	// in-memory RunStats or a telemetry.JSONLWriter for a streaming trace.
	Recorder telemetry.Recorder
	// Workers bounds the CPU workers of the parallel analyses (signature
	// simulation, ODC observability, exact-solver W/D build). 0 (or
	// negative) means one worker per available CPU; 1 runs the exact
	// sequential code paths. Every result is bit-identical for every
	// value (DESIGN.md §11). Analysis.Workers, when nonzero, overrides
	// this for the observability analysis alone.
	Workers int
	// WarmStart bulk-seeds the optimizer's constraint engine with the P0
	// requirement closure of each round's committed state instead of
	// discovering the same constraints one violation batch at a time
	// (core.Options.WarmStart). The committed fixpoint is unchanged —
	// every tentative is still verified against the authoritative solver
	// state before a commit (TestWarmStartMatchesCold asserts
	// bit-identity) — so, like Workers, the field is result-invariant and
	// excluded from CanonicalKey. The ECO session delta path sets it
	// (DESIGN.md §17).
	WarmStart bool
}

// normalized applies the documented defaults (ε = 0.10, Ts/Th = 0/2,
// KUnits = simulated vector count, analysis defaults) so the solver, the
// canonical option hash, and the service cache all see one value per
// configuration.
func (o RetimeOptions) normalized() RetimeOptions {
	if o.Epsilon == 0 {
		o.Epsilon = 0.10
	}
	if o.Ts == 0 {
		o.Ts = DefaultTs
	}
	if o.Th == 0 {
		o.Th = DefaultTh
	}
	if o.Analysis.Workers == 0 {
		o.Analysis.Workers = o.Workers
	}
	o.Analysis = o.Analysis.normalized()
	if o.KUnits == 0 {
		o.KUnits = 64 * o.Analysis.SignatureWords
	}
	return o
}

// validate rejects non-finite float parameters with typed errors
// unwrapping to guard.ErrParse and folds negative zeros to +0, so
// downstream float-keyed caches (the degradation chain's init memo, the
// service's content-addressed result cache) never see a key that cannot
// equal itself (NaN) or two spellings of one value (±0). op names the
// entry point for the error text.
func (o *RetimeOptions) validate(op string) error {
	for _, f := range []struct {
		name string
		v    *float64
	}{
		{"Epsilon", &o.Epsilon},
		{"Ts", &o.Ts},
		{"Th", &o.Th},
		{"AreaWeight", &o.AreaWeight},
		{"RminOverride", &o.RminOverride},
	} {
		if math.IsNaN(*f.v) || math.IsInf(*f.v, 0) {
			return guard.Optionf(op, f.name, "must be finite, got %v", *f.v)
		}
		if *f.v == 0 {
			*f.v = 0 // fold -0 to +0: map keys compare bits via ==, hashes format the sign
		}
	}
	if o.Analysis.Accuracy > AccuracyFast {
		return guard.Optionf(op, "Accuracy", "unknown accuracy %d", o.Analysis.Accuracy)
	}
	return nil
}

// canonFloat renders a float for canonical keys: shortest round-trip
// form, with -0 folded into +0.
func canonFloat(v float64) string {
	if v == 0 {
		v = 0
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// CanonicalKey returns a deterministic textual encoding of every option
// that can influence the retiming result, with defaults applied — two
// option values with equal keys request the same computation. Fields
// documented result-invariant are excluded: Workers (bit-identical for
// every count, DESIGN.md §11), WarmStart (same fixpoint, different
// constraint-discovery cost, DESIGN.md §17), Recorder, Verify,
// CheckLabels and FullLabelRecompute (check/debug modes that can only
// turn a result into an error, never change it). The service's
// content-addressed cache hashes this string next to the normalized
// netlist.
func (o RetimeOptions) CanonicalKey() string {
	n := o.normalized()
	return fmt.Sprintf("alg=%s engine=%s eps=%s ts=%s th=%s area=%s rmin=%s kunits=%d single=%t literal=%t stall=%d %s",
		n.Algorithm, n.Engine, canonFloat(n.Epsilon), canonFloat(n.Ts), canonFloat(n.Th),
		canonFloat(n.AreaWeight), canonFloat(n.RminOverride), n.KUnits,
		n.SingleViolation, n.LiteralGains, n.StallSteps, n.Analysis.CanonicalKey())
}

// RetimeResult reports a full retiming run.
type RetimeResult struct {
	// Algorithm echoes the objective.
	Algorithm Algorithm
	// Phi is the relaxed clock period used as the P1' constraint; PhiMin
	// the unrelaxed minimum found; Rmin the P2' shortest-path bound.
	Phi, PhiMin, Rmin float64
	// SetupHoldOK records whether the Section V setup+hold initialization
	// succeeded (false = fallback to plain min-period, Rmin degenerate).
	SetupHoldOK bool
	// Before and After are SER analyses of the original and retimed
	// circuits at Phi.
	Before, After Analysis
	// Rounds (#J) and Steps are optimizer iteration counts.
	Rounds, Steps int
	// Runtime is the optimizer wall time (excluding analysis).
	Runtime time.Duration
	// Retimed is the materialized retimed circuit.
	Retimed *Design
}

// DeltaSER returns the relative SER change in percent (negative =
// improvement), the paper's ΔSER columns.
func (r *RetimeResult) DeltaSER() float64 {
	if r.Before.SER == 0 {
		return 0
	}
	return 100 * (r.After.SER - r.Before.SER) / r.Before.SER
}

// DeltaFF returns the relative flip-flop count change in percent.
func (r *RetimeResult) DeltaFF() float64 {
	if r.Before.SharedFFs == 0 {
		return 0
	}
	return 100 * float64(r.After.SharedFFs-r.Before.SharedFFs) / float64(r.Before.SharedFFs)
}

// Retime runs the full pipeline of the paper: Section V initialization
// (setup+hold min-period retiming, ε relaxation, Rmin selection), then the
// selected optimizer, then SER evaluation of the result.
func (d *Design) Retime(opt RetimeOptions) (*RetimeResult, error) {
	return d.RetimeCtx(context.Background(), opt)
}

// RetimeCtx is Retime under cooperative cancellation and panic isolation:
// the initialization searches and the optimizer loop check ctx and abort
// with an error unwrapping to guard.ErrTimeout once it is done, and any
// internal panic is recovered into an error unwrapping to
// guard.ErrInternal instead of crashing the caller. The receiver's
// circuit is never modified, complete or not: the retimed netlist is
// materialized as a fresh Design.
func (d *Design) RetimeCtx(ctx context.Context, opt RetimeOptions) (*RetimeResult, error) {
	return guard.Do(ctx, "serretime.Retime", func(ctx context.Context) (*RetimeResult, error) {
		return d.retime(ctx, opt)
	})
}

func (d *Design) retime(ctx context.Context, opt RetimeOptions) (*RetimeResult, error) {
	if err := opt.validate("serretime.Retime"); err != nil {
		return nil, err
	}
	opt = opt.normalized()
	rec := telemetry.OrNop(opt.Recorder)

	rec.SpanStart(telemetry.PhaseObs)
	err := d.ensureObsRec(opt.Analysis, opt.Recorder)
	rec.SpanEnd(telemetry.PhaseObs, err)
	if err != nil {
		return nil, err
	}

	init, base, err := d.initializeBase(ctx, opt)
	if err != nil {
		return nil, err
	}

	rec.SpanStart(telemetry.PhaseGains)
	k := opt.KUnits
	gainsFn := core.Gains
	if opt.LiteralGains {
		gainsFn = core.GainsLiteral
	}
	gateObs, edgeObs := d.gateObs, d.edgeObs
	if opt.Algorithm == MinArea {
		// Min-area: every register costs 1 regardless of position.
		gateObs = ones(len(d.gateObs))
		edgeObs = ones(len(d.edgeObs))
	}
	gains, obsInt, err := gainsFn(base, gateObs, edgeObs, k)
	if err != nil {
		rec.SpanEnd(telemetry.PhaseGains, err)
		return nil, err
	}
	if opt.AreaWeight != 0 && opt.Algorithm != MinArea {
		areaGains, _, err := core.Gains(base, ones(len(gateObs)), ones(len(edgeObs)), k)
		if err != nil {
			rec.SpanEnd(telemetry.PhaseGains, err)
			return nil, err
		}
		lambda := opt.AreaWeight
		for v := range gains {
			gains[v] += int64(lambda * float64(areaGains[v]))
		}
	}
	rec.SpanEnd(telemetry.PhaseGains, nil)

	copt := core.Options{
		Phi: init.Phi, Ts: opt.Ts, Th: opt.Th, Rmin: init.Rmin,
		ELWConstraints:     opt.Algorithm == MinObsWin,
		SingleViolation:    opt.SingleViolation,
		StallSteps:         opt.StallSteps,
		SeedLabels:         init.Labels,
		CheckLabels:        opt.CheckLabels,
		FullLabelRecompute: opt.FullLabelRecompute,
		Recorder:           opt.Recorder,
		Workers:            opt.Workers,
		WarmStart:          opt.WarmStart,
	}
	if opt.RminOverride != 0 {
		copt.Rmin = opt.RminOverride
	}
	if opt.Engine == EngineForest {
		copt.Engine = core.EngineForest
	}
	start := time.Now()
	rec.SpanStart(telemetry.PhaseMinimize)
	cres, err := core.MinimizeCtx(ctx, base, gains, obsInt, copt)
	rec.SpanEnd(telemetry.PhaseMinimize, err)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	if opt.Verify {
		rec.SpanStart(telemetry.PhaseVerify)
		err := d.verifyMove(init.R, cres.R)
		rec.SpanEnd(telemetry.PhaseVerify, err)
		if err != nil {
			return nil, err
		}
	}

	// Total retiming relative to the original circuit.
	rec.SpanStart(telemetry.PhaseRebuild)
	total := init.R.Clone()
	for v := range total {
		total[v] += cres.R[v]
	}
	rb, err := graph.Rebuild(d.c, d.g, total)
	if err != nil {
		rec.SpanEnd(telemetry.PhaseRebuild, err)
		return nil, err
	}
	retimed, err := newDesign(rb.C)
	rec.SpanEnd(telemetry.PhaseRebuild, err)
	if err != nil {
		return nil, err
	}

	rec.SpanStart(telemetry.PhaseAnalysis)
	before, err := d.analyzeAt(d.g, graph.NewRetiming(d.g), init.Phi, opt.Analysis)
	if err != nil {
		rec.SpanEnd(telemetry.PhaseAnalysis, err)
		return nil, err
	}
	after, err := d.analyzeAt(d.g, total, init.Phi, opt.Analysis)
	rec.SpanEnd(telemetry.PhaseAnalysis, err)
	if err != nil {
		return nil, err
	}
	return &RetimeResult{
		Algorithm: opt.Algorithm,
		Phi:       init.Phi, PhiMin: init.PhiMin, Rmin: init.Rmin,
		SetupHoldOK: init.SetupHoldOK,
		Before:      *before, After: *after,
		Rounds: cres.Rounds, Steps: cres.Steps,
		Runtime: elapsed,
		Retimed: retimed,
	}, nil
}

// initializeBase runs the Section V initialization and rebases the graph
// onto it, consulting the degradation chain's memo (RetimeRobust) so
// tiers sharing (Ts, Th, Epsilon) pay for the min-period searches once
// and seed their solver state from the same labels. Memoized entries are
// read-only: Init.R is never written after creation, the rebased Graph is
// immutable, and the solver state clones Init.Labels before patching.
func (d *Design) initializeBase(ctx context.Context, opt RetimeOptions) (*retime.Init, *graph.Graph, error) {
	if opt.initMemo != nil {
		if init, base, ok := opt.initMemo.get(opt.Ts, opt.Th, opt.Epsilon); ok {
			return init, base, nil
		}
	}
	init, err := retime.InitializeCtx(ctx, d.g, retime.Options{
		Ts: opt.Ts, Th: opt.Th, Epsilon: opt.Epsilon, Recorder: opt.Recorder,
		Workers: opt.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	base, err := d.g.Rebase(init.R)
	if err != nil {
		return nil, nil, err
	}
	if opt.initMemo != nil {
		opt.initMemo.put(opt.Ts, opt.Th, opt.Epsilon, init, base)
	}
	return init, base, nil
}

// verifyMove checks sequential equivalence of the optimizer's (forward)
// move against the initialized circuit by exact state transport and
// co-simulation.
func (d *Design) verifyMove(initR graph.Retiming, moveR graph.Retiming) error {
	rb, err := graph.Rebuild(d.c, d.g, initR)
	if err != nil {
		return err
	}
	g1, err := graph.FromCircuit(rb.C, nil)
	if err != nil {
		return err
	}
	// Transfer the move onto the rebuilt circuit's graph by gate name.
	r1 := graph.NewRetiming(g1)
	for v := 1; v < d.g.NumVertices(); v++ {
		if moveR[v] == 0 {
			continue
		}
		n1, ok := rb.C.Lookup(d.g.Name(graph.VertexID(v)))
		if !ok {
			return fmt.Errorf("serretime: verify: gate %q lost in rebuild", d.g.Name(graph.VertexID(v)))
		}
		v1, ok := g1.VertexOf(n1)
		if !ok {
			return fmt.Errorf("serretime: verify: gate %q not in rebuilt graph", d.g.Name(graph.VertexID(v)))
		}
		r1[v1] = moveR[v]
	}
	return verify.ForwardEquivalent(rb.C, g1, r1, verify.DefaultOptions())
}

func ones(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// String renders the design's netlist in .bench syntax.
func (d *Design) String() string {
	var buf bytes.Buffer
	if err := benchfmt.Write(&buf, d.c); err != nil {
		return fmt.Sprintf("<error: %v>", err)
	}
	return buf.String()
}
